// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled processes.
//
// The engine maintains a virtual clock in nanoseconds and an event queue.
// Network components (NICs, hubs, switches) are pure event-driven objects;
// application code (MPI ranks) runs in Procs — goroutines that execute one
// at a time under the engine's control, so simulated programs can use
// ordinary sequential Go code with blocking operations (Sleep, queue Recv)
// that advance virtual time instead of wall time.
//
// Determinism: events that fire at the same virtual time run in the order
// they were scheduled (a monotone sequence number breaks ties), and all
// randomness flows through explicitly seeded sources, so a simulation with
// the same inputs always produces the same timeline.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1000.0 }

func (t Time) String() string { return fmt.Sprintf("%.3fµs", t.Microseconds()) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with New.
//
// An Engine is not safe for concurrent use: all interaction must happen
// either before Run, from event callbacks, or from code running inside a
// Proc spawned on this engine. This is by design — the simulation is
// single-threaded even though Procs are goroutines, because exactly one
// of {engine loop, some Proc} executes at any instant.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc
	// cur is the Proc currently holding the execution token, or nil when
	// the engine loop itself is running (e.g. inside event callbacks).
	cur *Proc

	// failure, if non-nil, aborts Run. Set by proc panics.
	failure error
}

// New returns an empty simulation at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run after delay elapses. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (e *Engine) At(delay Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + Time(delay), seq: e.seq, fn: fn})
}

// DeadlockError is returned by Run when the event queue drains while one
// or more Procs are still blocked: nothing can ever wake them.
type DeadlockError struct {
	// Blocked lists the names of the blocked processes.
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d proc(s) blocked forever: %v", len(d.Blocked), d.Blocked)
}

// Run processes events until the queue is empty, then verifies that every
// spawned Proc has finished. It returns the first error from a Proc
// function, an error wrapping a Proc panic, or a *DeadlockError if some
// Proc remains blocked with no pending events.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			return e.failure
		}
	}
	var blocked []string
	for _, p := range e.procs {
		if p.state != procDone {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked}
	}
	for _, p := range e.procs {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// RunUntil processes events with timestamps not after deadline. It is
// mainly useful in tests that examine intermediate simulation state.
func (e *Engine) RunUntil(deadline Time) error {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			return e.failure
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }
