package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

type procState int

const (
	procReady procState = iota
	procRunning
	procParked
	procDone
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time. At most one Proc runs at any instant; a Proc yields
// control back to the engine whenever it sleeps or blocks, and the engine
// resumes it when the corresponding wake event fires.
//
// All Proc methods must be called from within the Proc's own function.
type Proc struct {
	eng   *Engine
	name  string
	state procState
	err   error

	resume chan struct{}
	yield  chan struct{}

	// wake is the reusable wake-if-parked callback shared by Nudge,
	// Sleep, WaitFor and queue deadlines, created once at Spawn so the
	// hot wake paths schedule without allocating a fresh closure.
	wake func()
}

// Spawn creates a Proc named name running fn and schedules it to start at
// the current virtual time. The error returned by fn is reported by
// Engine.Run after the simulation drains.
func (e *Engine) Spawn(name string, fn func(p *Proc) error) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		state:  procReady,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.wake = func() {
		if p.state == procParked {
			e.dispatch(p)
		}
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("sim: proc %q panicked: %v\n%s", name, r, debug.Stack())
				e.failure = p.err
			}
			p.state = procDone
			p.yield <- struct{}{}
		}()
		p.err = fn(p)
	}()
	e.At(0, func() { e.dispatch(p) })
	return p
}

// dispatch hands the execution token to p and blocks the engine loop until
// p parks or finishes. Must only be called from the engine loop (an event
// callback), never from inside another Proc.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	if e.cur != nil {
		panic("sim: dispatch while a proc is running")
	}
	e.cur = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.yield
	e.cur = nil
}

// park yields control to the engine until some event resumes the proc.
func (p *Proc) park() {
	if p.eng.cur != p {
		panic("sim: park called outside proc context")
	}
	p.state = procParked
	p.eng.cur = nil
	p.yield <- struct{}{}
	<-p.resume
	p.state = procRunning
	p.eng.cur = p
}

// Nudge schedules a wake-up for p at the current virtual time. If p is not
// parked when the wake fires, the nudge is a no-op; parked code must
// therefore always re-check its blocking condition in a loop (spurious
// wake-ups are allowed, exactly as with condition variables). Nudge is the
// only way event-driven code may interact with a Proc and is safe to call
// from event callbacks and from other Procs.
func (p *Proc) Nudge() {
	p.eng.At(0, p.wake)
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the proc for d nanoseconds of virtual time. It models
// both idle waiting and CPU busy-time (the simulator does not distinguish
// them; callers use Sleep for host processing overheads).
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	deadline := p.eng.now + Time(d)
	p.eng.At(d, p.wake)
	for p.eng.now < deadline {
		p.park()
	}
}

// Yield lets any other work scheduled for the current instant run before
// the proc continues.
func (p *Proc) Yield() {
	p.Nudge()
	p.park()
}

// ErrTimeout is returned by deadline-limited waits.
var ErrTimeout = errors.New("sim: timed out")

// WaitFor parks the proc until cond() is true or the deadline passes.
// cond is evaluated each time the proc is woken (by a Nudge from whatever
// code makes the condition true, or by the internal timer). A deadline of
// zero or negative means wait forever. Returns ErrTimeout on expiry.
func (p *Proc) WaitFor(cond func() bool, deadline Time) error {
	if cond() {
		return nil
	}
	if deadline > 0 {
		p.eng.At(Duration(deadline-p.eng.now), p.wake)
	}
	for {
		if cond() {
			return nil
		}
		if deadline > 0 && p.eng.now >= deadline {
			return ErrTimeout
		}
		p.park()
	}
}
