package sim

// Queue is an unbounded FIFO message queue that simulated processes can
// block on. Producers may be event callbacks (e.g. a NIC delivering a
// frame) or other Procs; consumers are Procs. The zero value is not
// usable; create queues with NewQueue.
type Queue[T any] struct {
	eng *Engine
	// items is popped from head instead of re-sliced so the backing
	// array is reused; it resets to empty whenever the queue drains.
	items   []T
	head    int
	waiters map[*Proc]struct{}
	closed  bool
}

// NewQueue returns an empty queue bound to eng.
func NewQueue[T any](eng *Engine) *Queue[T] {
	return &Queue[T]{eng: eng, waiters: make(map[*Proc]struct{})}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Push appends v and wakes every blocked consumer so it can re-check.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.wakeAll()
}

// Close marks the queue closed; blocked and future Recv calls return
// ok=false once the queue drains.
func (q *Queue[T]) Close() {
	q.closed = true
	q.wakeAll()
}

func (q *Queue[T]) wakeAll() {
	for p := range q.waiters {
		p.Nudge()
	}
}

// Recv blocks p until an item is available and returns it. ok is false if
// the queue was closed and is empty.
func (q *Queue[T]) Recv(p *Proc) (v T, ok bool) {
	return q.RecvDeadline(p, 0)
}

// RecvDeadline is Recv with a virtual-time deadline; a zero deadline waits
// forever. On expiry it returns ok=false with the zero value (callers that
// must distinguish timeout from close can check Closed).
func (q *Queue[T]) RecvDeadline(p *Proc, deadline Time) (v T, ok bool) {
	if deadline > 0 {
		p.eng.At(Duration(deadline-p.eng.now), p.wake)
	}
	q.waiters[p] = struct{}{}
	defer delete(q.waiters, p)
	for {
		if q.head < len(q.items) {
			v = q.items[q.head]
			var zero T
			q.items[q.head] = zero
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			return v, true
		}
		if q.closed {
			return v, false
		}
		if deadline > 0 && p.eng.now >= deadline {
			return v, false
		}
		p.park()
	}
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.head >= len(q.items) {
		return v, false
	}
	return q.items[q.head], true
}
