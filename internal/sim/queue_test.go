package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) error {
		for i := 0; i < 5; i++ {
			v, ok := q.Recv(p)
			if !ok {
				t.Error("unexpected close")
			}
			got = append(got, v)
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		i := i
		e.At(Duration(10*(i+1)), func() { q.Push(i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestQueueRecvBeforePush(t *testing.T) {
	e := New()
	q := NewQueue[string](e)
	var at Time
	e.Spawn("consumer", func(p *Proc) error {
		v, ok := q.Recv(p)
		if !ok || v != "hello" {
			t.Errorf("Recv = %q,%v", v, ok)
		}
		at = p.Now()
		return nil
	})
	e.At(77, func() { q.Push("hello") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 77 {
		t.Fatalf("received at %v, want 77", at)
	}
}

func TestQueuePushBeforeRecvDoesNotBlock(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	q.Push(9)
	var at Time
	e.Spawn("consumer", func(p *Proc) error {
		v, ok := q.Recv(p)
		if !ok || v != 9 {
			t.Errorf("Recv = %d,%v", v, ok)
		}
		at = p.Now()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("received at %v, want 0 (no blocking)", at)
	}
}

func TestQueueClose(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	e.Spawn("consumer", func(p *Proc) error {
		if _, ok := q.Recv(p); !ok {
			return nil
		}
		t.Error("expected closed queue")
		return nil
	})
	e.At(10, func() { q.Close() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCloseDrainsRemainingItems(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	q.Push(1)
	q.Push(2)
	q.Close()
	var got []int
	e.Spawn("consumer", func(p *Proc) error {
		for {
			v, ok := q.Recv(p)
			if !ok {
				return nil
			}
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
}

func TestQueueRecvDeadlineTimesOut(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	e.Spawn("consumer", func(p *Proc) error {
		_, ok := q.RecvDeadline(p, 40)
		if ok {
			t.Error("expected timeout")
		}
		if p.Now() != 40 {
			t.Errorf("timed out at %v, want 40", p.Now())
		}
		return nil
	})
	e.At(100, func() { q.Push(1) }) // arrives after deadline
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRecvDeadlineBeatenByPush(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	e.Spawn("consumer", func(p *Proc) error {
		v, ok := q.RecvDeadline(p, 100)
		if !ok || v != 5 {
			t.Errorf("RecvDeadline = %d,%v; want 5,true", v, ok)
		}
		return nil
	})
	e.At(20, func() { q.Push(5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoConsumersEachGetOneItem(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	sum := 0
	for i := 0; i < 2; i++ {
		e.Spawn("c", func(p *Proc) error {
			v, ok := q.Recv(p)
			if !ok {
				t.Error("unexpected close")
			}
			sum += v
			return nil
		})
	}
	e.At(10, func() { q.Push(3) })
	e.At(20, func() { q.Push(4) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
}

func TestProcToProcHandoff(t *testing.T) {
	e := New()
	a2b := NewQueue[int](e)
	b2a := NewQueue[int](e)
	e.Spawn("a", func(p *Proc) error {
		a2b.Push(1)
		v, _ := b2a.Recv(p)
		if v != 2 {
			t.Errorf("a received %d, want 2", v)
		}
		return nil
	})
	e.Spawn("b", func(p *Proc) error {
		v, _ := a2b.Recv(p)
		if v != 1 {
			t.Errorf("b received %d, want 1", v)
		}
		b2a.Push(2)
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: all pushed items are received exactly once, in push order.
func TestQueueDeliveryProperty(t *testing.T) {
	f := func(vals []int16) bool {
		e := New()
		q := NewQueue[int16](e)
		var got []int16
		e.Spawn("consumer", func(p *Proc) error {
			for {
				v, ok := q.Recv(p)
				if !ok {
					return nil
				}
				got = append(got, v)
			}
		})
		for i, v := range vals {
			v := v
			e.At(Duration(i+1), func() { q.Push(v) })
		}
		e.At(Duration(len(vals)+1), func() { q.Close() })
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a2 := NewRand(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
	if d := r.Duration(0); d != 0 {
		t.Fatalf("Duration(0) = %d, want 0", d)
	}
}
