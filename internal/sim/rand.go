package sim

// Rand is a small deterministic pseudo-random source (splitmix64) used for
// backoff draws and skew injection. It is intentionally independent of
// math/rand so simulation timelines are stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Duration returns a uniform duration in [0, max). A non-positive max
// yields zero.
func (r *Rand) Duration(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(max))
}

// Fork derives an independent generator; useful to give each component
// its own stream while keeping a single top-level seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
