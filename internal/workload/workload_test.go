package workload_test

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/workload"
)

// TestEveryRegisteredOpDispatches runs each registered op once on the
// in-process transport: a registered op must neither error nor panic.
func TestEveryRegisteredOpDispatches(t *testing.T) {
	for _, op := range workload.Ops() {
		op := op
		t.Run(string(op), func(t *testing.T) {
			err := mpi.RunMem(4, mpi.Algorithms{}, func(c *mpi.Comm) error {
				return workload.Make(c, op, 64, 0)()
			})
			if err != nil {
				t.Fatalf("op %q: %v", op, err)
			}
		})
	}
}

// TestUnknownOpErrors: a typo'd op must fail loudly instead of silently
// measuring some other collective.
func TestUnknownOpErrors(t *testing.T) {
	err := mpi.RunMem(2, mpi.Algorithms{}, func(c *mpi.Comm) error {
		return workload.Make(c, "bcst", 64, 0)()
	})
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op error = %v, want unknown-op failure", err)
	}
}
