// Package workload binds MPI collective operations to per-rank buffers
// for latency measurement. It is shared by the bench harness (simulated
// testbed) and cmd/mpirun (real UDP multicast) so both surfaces measure
// exactly the same operation, and depends only on the mpi layer.
package workload

import (
	"fmt"

	"repro/internal/mpi"
)

// Op names a measurable collective operation.
type Op string

const (
	// OpBcast measures MPI_Bcast of size bytes from the root.
	OpBcast Op = "bcast"
	// OpBarrier measures MPI_Barrier.
	OpBarrier Op = "barrier"
	// OpAllgather measures MPI_Allgather with size bytes per rank.
	OpAllgather Op = "allgather"
	// OpAllreduce measures MPI_Allreduce of exactly size bytes
	// (mpi.Byte elements under OpMax, so any size is measurable).
	OpAllreduce Op = "allreduce"
	// OpScatter measures MPI_Scatter of size bytes per rank from the root.
	OpScatter Op = "scatter"
	// OpGather measures MPI_Gather of size bytes per rank to the root.
	OpGather Op = "gather"
	// OpAlltoall measures MPI_Alltoall with size bytes per rank pair.
	OpAlltoall Op = "alltoall"
)

// Ops lists every measurable operation; harness surfaces iterate it so a
// newly registered collective cannot be forgotten by a smoke test, and
// the bench dispatcher validates against it.
func Ops() []Op {
	return []Op{OpBcast, OpBarrier, OpAllgather, OpAllreduce, OpScatter, OpGather, OpAlltoall}
}

// Make binds op to per-rank buffers on c; size is the per-rank chunk in
// bytes for the rooted and all-to-all collectives. An unknown op yields
// a function that always errors, so a typo'd scenario fails instead of
// silently measuring the wrong collective.
func Make(c *mpi.Comm, op Op, size, root int) func() error {
	switch op {
	case OpBcast:
		buf := make([]byte, size)
		return func() error { return c.Bcast(buf, root) }
	case OpBarrier:
		return func() error { return c.Barrier() }
	case OpAllgather:
		send := make([]byte, size)
		recv := make([]byte, size*c.Size())
		return func() error { return c.Allgather(send, recv) }
	case OpAllreduce:
		send := make([]byte, size)
		recv := make([]byte, size)
		return func() error { return c.Allreduce(send, recv, mpi.Byte, mpi.OpMax) }
	case OpScatter:
		var send []byte
		if c.Rank() == root {
			send = make([]byte, size*c.Size())
		}
		recv := make([]byte, size)
		return func() error { return c.Scatter(send, recv, root) }
	case OpGather:
		send := make([]byte, size)
		var recv []byte
		if c.Rank() == root {
			recv = make([]byte, size*c.Size())
		}
		return func() error { return c.Gather(send, recv, root) }
	case OpAlltoall:
		send := make([]byte, size*c.Size())
		recv := make([]byte, size*c.Size())
		return func() error { return c.Alltoall(send, recv) }
	default:
		return func() error { return fmt.Errorf("workload: unknown op %q", op) }
	}
}
