package repro

// One benchmark per figure of the paper's evaluation (Figs. 7-13) plus
// the ablations, reporting *simulated* microseconds per operation as the
// primary metric (sim-us/op) — wall time of a discrete-event simulation
// is meaningless for the paper's claims. Wall-clock benchmarks of the
// real transports (channel, UDP multicast) and of the hot codec paths
// follow at the bottom.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig13 -benchtime=20x

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udpnet"
)

// simBench runs one scenario repetition per iteration and reports the
// median simulated latency.
func simBench(b *testing.B, sc bench.Scenario) {
	b.Helper()
	sc.Reps = 1
	var total float64
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		r, err := bench.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		total += r.Samples[0]
	}
	b.ReportMetric(total/float64(b.N), "sim-us/op")
	b.ReportMetric(0, "ns/op") // wall time of the simulator is not the result
}

func bcastScenario(procs int, topo simnet.Topology, alg bench.Algorithm, size int) bench.Scenario {
	sc := bench.DefaultScenario()
	sc.Procs = procs
	sc.Topology = topo
	sc.Algorithm = alg
	sc.MsgSize = size
	return sc
}

// benchAlgs are the three contenders of Figs. 7-10.
var benchAlgs = []bench.Algorithm{bench.MPICH, bench.McastLinear, bench.McastBinary}

// benchSizes samples the paper's 0-5000 byte x-axis.
var benchSizes = []int{0, 1000, 5000}

func benchBcastFigure(b *testing.B, procs int, topo simnet.Topology) {
	for _, alg := range benchAlgs {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/size=%d", alg, size), func(b *testing.B) {
				simBench(b, bcastScenario(procs, topo, alg, size))
			})
		}
	}
}

// BenchmarkFig07BcastHub4 regenerates Fig. 7 points: broadcast, 4
// processes, shared 100 Mbps hub.
func BenchmarkFig07BcastHub4(b *testing.B) { benchBcastFigure(b, 4, simnet.Hub) }

// BenchmarkFig08BcastSwitch4 regenerates Fig. 8: 4 processes, switch.
func BenchmarkFig08BcastSwitch4(b *testing.B) { benchBcastFigure(b, 4, simnet.Switch) }

// BenchmarkFig09BcastSwitch6 regenerates Fig. 9: 6 processes, switch.
func BenchmarkFig09BcastSwitch6(b *testing.B) { benchBcastFigure(b, 6, simnet.Switch) }

// BenchmarkFig10BcastSwitch9 regenerates Fig. 10: 9 processes, switch.
func BenchmarkFig10BcastSwitch9(b *testing.B) { benchBcastFigure(b, 9, simnet.Switch) }

// BenchmarkFig11HubVsSwitch regenerates Fig. 11: MPICH and the binary
// multicast broadcast on both topologies.
func BenchmarkFig11HubVsSwitch(b *testing.B) {
	for _, topo := range []simnet.Topology{simnet.Hub, simnet.Switch} {
		for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
			for _, size := range benchSizes {
				b.Run(fmt.Sprintf("%s/%s/size=%d", alg, topo, size), func(b *testing.B) {
					simBench(b, bcastScenario(4, topo, alg, size))
				})
			}
		}
	}
}

// BenchmarkFig12Scaling regenerates Fig. 12: MPICH vs linear multicast
// at 3, 6 and 9 processes over the switch.
func BenchmarkFig12Scaling(b *testing.B) {
	for _, procs := range []int{3, 6, 9} {
		for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastLinear} {
			for _, size := range benchSizes {
				b.Run(fmt.Sprintf("%s/procs=%d/size=%d", alg, procs, size), func(b *testing.B) {
					simBench(b, bcastScenario(procs, simnet.Switch, alg, size))
				})
			}
		}
	}
}

// BenchmarkFig13Barrier regenerates Fig. 13: barrier over the hub as the
// process count grows.
func BenchmarkFig13Barrier(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
		for _, procs := range []int{2, 4, 6, 9} {
			b.Run(fmt.Sprintf("%s/procs=%d", alg, procs), func(b *testing.B) {
				sc := bench.DefaultScenario()
				sc.Procs = procs
				sc.Topology = simnet.Hub
				sc.Algorithm = alg
				sc.Op = bench.OpBarrier
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkAblationAck regenerates experiment A1: the PVM-style
// acknowledgment broadcast against scouts and MPICH.
func BenchmarkAblationAck(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary, bench.McastAck} {
		for _, size := range []int{1000, 5000} {
			b.Run(fmt.Sprintf("%s/size=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(4, simnet.Switch, alg, size)
				sc.SkewMax = 60_000
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkAblationSequencer measures the Orca-style sequencer broadcast
// against the paper's binary algorithm. The root is rank 2, so the
// sequencer variant pays the extra forwarding hop to rank 0 that buys it
// total ordering.
func BenchmarkAblationSequencer(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.McastBinary, bench.Sequencer} {
		b.Run(string(alg), func(b *testing.B) {
			sc := bcastScenario(6, simnet.Switch, alg, 2000)
			sc.Root = 2
			simBench(b, sc)
		})
	}
}

// BenchmarkExtAllgatherHub8 compares the multicast allgather rounds
// against the baseline unicast ring (Fig. 14's points) at 8 processes
// over the shared hub.
func BenchmarkExtAllgatherHub8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
		for _, size := range []int{250, 1500, 4000} {
			b.Run(fmt.Sprintf("%s/chunk=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Hub, alg, size)
				sc.Op = bench.OpAllgather
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtAllreduceHub8 compares the binomial-reduce + multicast
// broadcast composition against MPICH's reduce + binomial broadcast
// (Fig. 15's points) at 8 processes over the shared hub.
func BenchmarkExtAllreduceHub8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
		for _, size := range []int{248, 1504, 4000} {
			b.Run(fmt.Sprintf("%s/size=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Hub, alg, size)
				sc.Op = bench.OpAllreduce
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtRootedHub8 measures the scout-gated scatter and gather
// variants against their baselines at 8 processes over the shared hub.
func BenchmarkExtRootedHub8(b *testing.B) {
	for _, op := range []bench.Op{bench.OpScatter, bench.OpGather} {
		for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
			b.Run(fmt.Sprintf("%s/%s", op, alg), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Hub, alg, 1000)
				sc.Op = op
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtAlltoallHub8 compares the scout-gated scatter rounds
// against the pairwise unicast exchange (Fig. 16's points) at 8
// processes over the shared hub, sequential and pipelined.
func BenchmarkExtAlltoallHub8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary, bench.McastPipelined} {
		for _, size := range []int{250, 1500, 4000} {
			b.Run(fmt.Sprintf("%s/chunk=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Hub, alg, size)
				sc.Op = bench.OpAlltoall
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtAllreduceChunkedSwitch8 compares the chunked allreduce
// (per-slice binomial reduce-scatter + pipelined multicast allgather,
// fig 19's points) against the binomial-reduce composition at 8
// processes over the switch, where the rank-0 funnel of the binomial
// variant serializes on one port.
func BenchmarkExtAllreduceChunkedSwitch8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.McastBinary, bench.McastChunked} {
		for _, size := range []int{248, 1504, 8000} {
			b.Run(fmt.Sprintf("%s/size=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Switch, alg, size)
				sc.Op = bench.OpAllreduce
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtAlltoallSlicedHub8 measures the slice-filtering win on the
// heaviest pattern (fig 18's latency companion): the sliced rounds
// against the whole-buffer rounds and the pairwise baseline at 8
// processes over the shared hub.
func BenchmarkExtAlltoallSlicedHub8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary, bench.McastWhole} {
		for _, size := range []int{1500, 4000} {
			b.Run(fmt.Sprintf("%s/chunk=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Hub, alg, size)
				sc.Op = bench.OpAlltoall
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtAllgatherPipelinedSwitch8 measures what the pipelined
// round schedule buys over the sequential one (Fig. 17's points) at 8
// processes over the switch, where the uplink serialization makes scout
// latency most visible.
func BenchmarkExtAllgatherPipelinedSwitch8(b *testing.B) {
	for _, alg := range []bench.Algorithm{bench.McastBinary, bench.McastPipelined} {
		for _, size := range []int{250, 1500, 4000} {
			b.Run(fmt.Sprintf("%s/chunk=%d", alg, size), func(b *testing.B) {
				sc := bcastScenario(8, simnet.Switch, alg, size)
				sc.Op = bench.OpAllgather
				simBench(b, sc)
			})
		}
	}
}

// BenchmarkExtNSweepSharedSwitch measures the figure 14n/15n points the
// paper's 8-port testbed could not reach: the multicast suite against
// the MPICH baseline at N ∈ {16, 32} on the shared-uplink switch (4
// stations per port), where an uplink carries a multicast once per
// segment but the unicast exchange once per destination.
func BenchmarkExtNSweepSharedSwitch(b *testing.B) {
	for _, procs := range []int{16, 32} {
		for _, op := range []bench.Op{bench.OpAllgather, bench.OpAllreduce} {
			for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", op, alg, procs), func(b *testing.B) {
					prof := simnet.DefaultProfile()
					prof.UplinkFanout = 4
					sc := bcastScenario(procs, simnet.SwitchShared, alg, 2000)
					sc.Op = op
					sc.Profile = &prof
					simBench(b, sc)
				})
			}
		}
	}
}

// BenchmarkExtTwoLevelSharedSwitch covers the fig 14h/15h acceptance
// points: the two-level (segment-leader) collectives against the
// strongest flat variants on the shared-uplink switch at N ∈ {16, 32}.
func BenchmarkExtTwoLevelSharedSwitch(b *testing.B) {
	for _, procs := range []int{16, 32} {
		for _, cs := range []struct {
			op   bench.Op
			algs []bench.Algorithm
		}{
			{bench.OpAllgather, []bench.Algorithm{bench.McastPipelined, bench.McastTwoLevel}},
			{bench.OpAllreduce, []bench.Algorithm{bench.McastBinary, bench.McastTwoLevel}},
		} {
			for _, alg := range cs.algs {
				b.Run(fmt.Sprintf("%s/%s/n=%d", cs.op, alg, procs), func(b *testing.B) {
					prof := simnet.DefaultProfile()
					prof.UplinkFanout = 4
					sc := bcastScenario(procs, simnet.SwitchShared, alg, 5000)
					sc.Op = cs.op
					sc.Profile = &prof
					simBench(b, sc)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Wall-clock benchmarks: real transports and hot paths.

// BenchmarkMemBcast measures the binary multicast broadcast end to end
// over the in-process channel transport (goroutines, real time).
func BenchmarkMemBcast(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			algs := core.Algorithms(core.Binary).Merge(baseline.Algorithms())
			var iters atomic.Int64
			iters.Store(int64(b.N))
			b.ResetTimer()
			err := mpi.RunMem(4, algs, func(c *mpi.Comm) error {
				buf := make([]byte, size)
				for i := 0; i < b.N; i++ {
					if err := c.Bcast(buf, 0); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkUDPBcast measures the broadcast over real UDP/IP multicast
// sockets through the kernel. Skipped where multicast is unavailable.
func BenchmarkUDPBcast(b *testing.B) {
	if err := udpnet.Probe(); err != nil {
		b.Skipf("multicast unavailable: %v", err)
	}
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			cfg := udpnet.DefaultConfig(4)
			cfg.McastPort = 47100 + size%97
			algs := core.Algorithms(core.Binary).Merge(baseline.Algorithms())
			b.ResetTimer()
			err := udpnet.Run(cfg, algs, func(c *mpi.Comm) error {
				buf := make([]byte, size)
				for i := 0; i < b.N; i++ {
					if err := c.Bcast(buf, 0); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCodecEncode measures the wire-format encoder.
func BenchmarkCodecEncode(b *testing.B) {
	m := transport.Message{Kind: transport.Mcast, Comm: 1, Src: 3, Tag: -1001, Seq: 7,
		Payload: make([]byte, 1400)}
	frags := transport.Split(m, 42, 1400)
	b.SetBytes(int64(len(frags[0].Msg.Payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := transport.EncodeFragment(frags[0])
		_ = buf
	}
}

// BenchmarkCodecDecode measures the wire-format decoder.
func BenchmarkCodecDecode(b *testing.B) {
	m := transport.Message{Kind: transport.Mcast, Comm: 1, Src: 3, Tag: -1001, Seq: 7,
		Payload: make([]byte, 1400)}
	buf := transport.EncodeFragment(transport.Split(m, 42, 1400)[0])
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.DecodeFragment(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw discrete-event throughput (events/sec
// drive how fast the figure sweeps run).
func BenchmarkSimEngine(b *testing.B) {
	sc := bcastScenario(9, simnet.Hub, bench.McastBinary, 5000)
	sc.Reps = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
