// udpcluster demonstrates the collectives over REAL IP multicast: six
// ranks with real UDP sockets, one kernel multicast datagram per
// broadcast, scout synchronization making the unreliable medium safe.
// It also demonstrates the paper's slow-receiver scenario live: one rank
// is deliberately late into the broadcast and still receives everything,
// because the root cannot multicast until the slow rank's scout arrives.
//
//	go run ./examples/udpcluster
//
// If the host has no usable multicast (some containers), the example
// reports it and exits 0.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/udpnet"
)

func main() {
	if err := udpnet.Probe(); err != nil {
		fmt.Printf("IP multicast not available here (%v) — nothing to demo.\n", err)
		os.Exit(0)
	}

	const n = 6
	cfg := udpnet.DefaultConfig(n)
	algs := core.Algorithms(core.Binary).Merge(baseline.Algorithms())

	payload := bytes.Repeat([]byte("multicast!"), 400) // 4 kB, 3 datagrams

	err := udpnet.Run(cfg, algs, func(c *mpi.Comm) error {
		if c.Rank() == 3 {
			// The slow receiver: busy "computing" while everyone else
			// is already inside the broadcast.
			start := c.Now()
			for c.Now()-start < 30_000_000 { // 30 ms
			}
			fmt.Println("rank 3: finally entering the broadcast (30 ms late)")
		}
		buf := make([]byte, len(payload))
		if c.Rank() == 0 {
			copy(buf, payload)
		}
		start := c.Now()
		if err := c.Bcast(buf, 0); err != nil {
			return err
		}
		elapsed := float64(c.Now()-start) / 1e3
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("rank %d received corrupted payload", c.Rank())
		}
		fmt.Printf("rank %d: got %d bytes via kernel multicast in %.0f µs\n",
			c.Rank(), len(buf), elapsed)

		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("barrier passed: all ranks synchronized by one multicast release")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
