// ordering demonstrates the paper's §4 argument: with safe MPI code, the
// order of broadcasts over shared multicast groups is preserved — even
// with several successive roots, and even when a process receives from
// two multicast groups.
//
// It replays the paper's own example: processes 6, 7 and 8 broadcast to
// the same process group back to back. Because process 7 cannot proceed
// to send the second broadcast until it has received the first, and
// process 8 cannot send the third until it has received the second, the
// three broadcasts arrive everywhere in program order. Then the world is
// split into two overlapping-traffic groups to show ordering holds across
// groups, and finally the Orca-style sequencer broadcast is shown giving
// the same total order through a different mechanism.
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	algs := core.Algorithms(core.Binary).Merge(baseline.Algorithms())
	fmt.Println("§4 example: broadcasts from roots 6, 7, 8 — delivery order per rank:")
	err := mpi.RunMem(9, algs, func(c *mpi.Comm) error {
		var got []string
		for k, root := range []int{6, 7, 8} {
			buf := make([]byte, 8)
			if c.Rank() == root {
				copy(buf, fmt.Sprintf("msg-%d", k+1))
			}
			if err := c.Bcast(buf, root); err != nil {
				return err
			}
			got = append(got, strings.TrimRight(string(buf), "\x00"))
		}
		if c.Rank() < 3 { // a few ranks report; all assert
			fmt.Printf("  rank %d delivered: %s\n", c.Rank(), strings.Join(got, " → "))
		}
		if strings.Join(got, ",") != "msg-1,msg-2,msg-3" {
			return fmt.Errorf("rank %d saw out-of-order delivery: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two multicast groups (even/odd split), interleaved with world broadcasts:")
	err = mpi.RunMem(6, algs, func(c *mpi.Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		for k := 0; k < 3; k++ {
			wbuf, sbuf := make([]byte, 1), make([]byte, 1)
			if c.Rank() == 0 {
				wbuf[0] = byte(10 + k)
			}
			if err := c.Bcast(wbuf, 0); err != nil {
				return err
			}
			if sub.Rank() == 0 {
				sbuf[0] = byte(20 + k)
			}
			if err := sub.Bcast(sbuf, 0); err != nil {
				return err
			}
			if wbuf[0] != byte(10+k) || sbuf[0] != byte(20+k) {
				return fmt.Errorf("rank %d round %d out of order", c.Rank(), k)
			}
		}
		if c.Rank() == 0 {
			fmt.Println("  6 ranks × 3 rounds on two groups: every delivery in program order ✓")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sequencer (Orca-style) broadcast — same order through rank 0:")
	err = mpi.RunMem(5, core.SequencerAlgorithms().Merge(baseline.Algorithms()), func(c *mpi.Comm) error {
		var got []byte
		for _, root := range []int{3, 1, 4} {
			buf := make([]byte, 1)
			if c.Rank() == root {
				buf[0] = byte(root)
			}
			if err := c.Bcast(buf, root); err != nil {
				return err
			}
			got = append(got, buf[0])
		}
		if got[0] != 3 || got[1] != 1 || got[2] != 4 {
			return fmt.Errorf("rank %d sequencer order broken: %v", c.Rank(), got)
		}
		if c.Rank() == 0 {
			fmt.Printf("  all ranks delivered 3 → 1 → 4 ✓\n")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
