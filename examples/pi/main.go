// pi estimates π by numerical integration of 4/(1+x²) on [0,1] — the
// canonical first MPI application — on the *simulated* 9-node Fast
// Ethernet cluster, and reports how much virtual time the collectives
// cost under the MPICH algorithms versus the paper's multicast
// algorithms. This is the "additional experimentation using parallel
// applications" the paper's future work calls for.
//
//	go run ./examples/pi
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

func run(label string, algs mpi.Algorithms) {
	const (
		procs     = 9
		intervals = 1_000_000
		rounds    = 10 // the app broadcasts work and reduces each round
	)
	var finish int64
	var result float64
	_, err := cluster.RunSim(procs, simnet.Hub, simnet.DefaultProfile(), algs,
		func(c *mpi.Comm) error {
			pi := 0.0
			for round := 0; round < rounds; round++ {
				// Root broadcasts the interval count (message > one
				// Ethernet frame to give multicast its advantage).
				work := make([]byte, 2048)
				if c.Rank() == 0 {
					copy(work, mpi.Int64sToBytes([]int64{intervals}))
				}
				if err := c.Bcast(work, 0); err != nil {
					return err
				}
				n := mpi.BytesToInt64s(work[:8])[0]
				h := 1.0 / float64(n)
				sum := 0.0
				for i := int64(c.Rank()); i < n; i += int64(c.Size()) {
					x := h * (float64(i) + 0.5)
					sum += 4.0 / (1.0 + x*x)
				}
				part := mpi.Float64sToBytes([]float64{sum * h})
				tot := make([]byte, len(part))
				if err := c.Reduce(part, tot, mpi.Float64, mpi.OpSum, 0); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					pi = mpi.BytesToFloat64s(tot)[0]
				}
			}
			if c.Rank() == 0 {
				result = pi
				finish = c.Now()
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s π ≈ %.9f (err %.1e)  communication+compute: %8.1f µs of simulated time\n",
		label, result, math.Abs(result-math.Pi), float64(finish)/1000)
}

func main() {
	fmt.Println("π on the simulated 9-node Fast Ethernet hub, 10 rounds of bcast+reduce+barrier:")
	mpich := baseline.Algorithms()
	run("mpich", mpich)
	mcastB, err := bench.Set(bench.McastBinary)
	if err != nil {
		log.Fatal(err)
	}
	run("mcast-binary", mcastB)
	mcastL, err := bench.Set(bench.McastLinear)
	if err != nil {
		log.Fatal(err)
	}
	run("mcast-linear", mcastL)
}
