// Quickstart: a complete MPI program using the multicast collectives.
//
// Four ranks run in-process (goroutines over the channel transport —
// swap in udpnet or simnet without touching the program): the root
// broadcasts a configuration blob with the paper's binary scout
// algorithm, everyone contributes to an allreduce, and a barrier closes
// the round.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	// Collectives: the paper's multicast broadcast and barrier, with the
	// MPICH-style algorithms underneath for everything else.
	algs := core.Algorithms(core.Binary).Merge(baseline.Algorithms())

	err := mpi.RunMem(4, algs, func(c *mpi.Comm) error {
		// 1. Root broadcasts a config payload; one multicast reaches
		//    every rank after the scout synchronization guarantees no
		//    receiver can lose it.
		config := make([]byte, 32)
		if c.Rank() == 0 {
			copy(config, "tile=8;iters=100;tol=1e-6")
		}
		if err := c.Bcast(config, 0); err != nil {
			return fmt.Errorf("bcast: %w", err)
		}

		// 2. Every rank computes something and the world sums it.
		local := mpi.Int64sToBytes([]int64{int64((c.Rank() + 1) * 10)})
		global := make([]byte, len(local))
		if err := c.Allreduce(local, global, mpi.Int64, mpi.OpSum); err != nil {
			return fmt.Errorf("allreduce: %w", err)
		}

		// 3. Synchronize before reporting.
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}

		fmt.Printf("rank %d: config=%q sum=%d\n",
			c.Rank(), string(config[:26]), mpi.BytesToInt64s(global)[0])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
