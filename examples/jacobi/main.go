// jacobi solves the 1-D heat equation with a Jacobi iteration distributed
// over a simulated 8-node cluster: halo exchange via point-to-point
// SendRecv, convergence detection via Allreduce(max), and periodic
// redistribution of the global state via broadcast. The broadcast is
// where the paper's multicast implementation pays off — the example runs
// the same solver under both collective stacks and prints the virtual
// communication time of each.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

const (
	procs     = 8
	cells     = 512 // per rank
	maxIters  = 200
	tolerance = 1e-4
)

func run(label string, algs mpi.Algorithms) {
	var finish int64
	var iters int
	var residual float64
	_, err := cluster.RunSim(procs, simnet.Switch, simnet.DefaultProfile(), algs,
		func(c *mpi.Comm) error {
			rank, size := c.Rank(), c.Size()
			// Local stripe with two ghost cells. Fixed boundary values
			// at the global edges drive the diffusion.
			u := make([]float64, cells+2)
			next := make([]float64, cells+2)
			if rank == 0 {
				u[0] = 100.0 // hot left wall
			}
			if rank == size-1 {
				u[cells+1] = -50.0 // cold right wall
			}

			for it := 0; it < maxIters; it++ {
				// Halo exchange with neighbours (deadlock-free:
				// transport sends are buffered).
				left, right := rank-1, rank+1
				buf := make([]byte, 8)
				if right < size {
					if _, err := c.SendRecv(right, 1, mpi.Float64sToBytes(u[cells:cells+1]),
						right, 2, buf); err != nil {
						return err
					}
					u[cells+1] = mpi.BytesToFloat64s(buf)[0]
				}
				if left >= 0 {
					if _, err := c.SendRecv(left, 2, mpi.Float64sToBytes(u[1:2]),
						left, 1, buf); err != nil {
						return err
					}
					u[0] = mpi.BytesToFloat64s(buf)[0]
				}

				// Jacobi sweep.
				diff := 0.0
				for i := 1; i <= cells; i++ {
					next[i] = 0.5 * (u[i-1] + u[i+1])
					if d := math.Abs(next[i] - u[i]); d > diff {
						diff = d
					}
				}
				copy(u[1:cells+1], next[1:cells+1])
				if rank == 0 {
					u[0] = 100.0
				}
				if rank == size-1 {
					u[cells+1] = -50.0
				}

				// Global convergence check: max residual across ranks.
				in := mpi.Float64sToBytes([]float64{diff})
				out := make([]byte, len(in))
				if err := c.Allreduce(in, out, mpi.Float64, mpi.OpMax); err != nil {
					return err
				}
				global := mpi.BytesToFloat64s(out)[0]

				// Every 50 iterations rank 0 broadcasts a checkpoint of
				// its stripe (a multi-frame message: multicast country).
				if it%50 == 49 {
					ckpt := make([]byte, 8*cells)
					if rank == 0 {
						copy(ckpt, mpi.Float64sToBytes(u[1:cells+1]))
					}
					if err := c.Bcast(ckpt, 0); err != nil {
						return err
					}
				}

				if rank == 0 {
					iters, residual = it+1, global
				}
				if global < tolerance {
					break
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if rank == 0 {
				finish = c.Now()
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %3d iterations, residual %.2e, %10.1f µs simulated wall time\n",
		label, iters, residual, float64(finish)/1000)
}

func main() {
	fmt.Printf("1-D Jacobi heat solver, %d ranks × %d cells, switch topology:\n", procs, cells)
	run("mpich", baseline.Algorithms())
	run("mcast-binary", core.Algorithms(core.Binary).Merge(baseline.Algorithms()))
}
