package repro

// Smoke tests for the figure harness: one tiny scenario per protocol and
// per collective, so a regression in the measurement pipeline fails
// `go test` instead of only surfacing under -bench.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// TestScenarioSmoke runs a minimal bench.Run for every registered
// protocol except the deliberately lossy Unsafe ablation, so a newly
// registered algorithm cannot dodge the measurement pipeline.
func TestScenarioSmoke(t *testing.T) {
	var algs []bench.Algorithm
	for _, a := range bench.Algorithms() {
		if a != bench.Unsafe {
			algs = append(algs, a)
		}
	}
	for _, alg := range algs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			sc := bench.DefaultScenario()
			sc.Algorithm = alg
			sc.MsgSize = 600
			sc.Reps = 2
			r, err := bench.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Samples) != 2 || r.Median() <= 0 {
				t.Fatalf("implausible result: %+v", r)
			}
		})
	}
}

// TestCollectiveScenarioSmoke covers every registered collective op with
// the multicast suites and the baseline. Iterating workload.Ops() means
// a newly registered collective fails this smoke until it dispatches
// cleanly — a registered op that panics or errors fails the bench smoke.
func TestCollectiveScenarioSmoke(t *testing.T) {
	for _, alg := range []bench.Algorithm{
		bench.MPICH, bench.McastBinary, bench.McastPipelined,
		bench.McastResilient, bench.McastChunked, bench.McastWhole,
	} {
		for _, op := range workload.Ops() {
			alg, op := alg, op
			t.Run(fmt.Sprintf("%s/%s", alg, op), func(t *testing.T) {
				sc := bench.DefaultScenario()
				sc.Algorithm = alg
				sc.Op = op
				sc.Procs = 5
				sc.Topology = simnet.Hub
				sc.MsgSize = 512
				sc.Reps = 2
				r, err := bench.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if r.Median() <= 0 {
					t.Fatalf("implausible latency %v", r.Median())
				}
			})
		}
	}
}

// TestUnknownOpFailsLoudly: a typo'd scenario op must be an error from
// the measurement pipeline, not a silently measured broadcast.
func TestUnknownOpFailsLoudly(t *testing.T) {
	sc := bench.DefaultScenario()
	sc.Op = "bcst"
	sc.Reps = 2
	if _, err := bench.Run(sc); err == nil {
		t.Fatal("unknown op measured something instead of failing")
	}
}

// TestExtensionFigureRenders builds the extension comparison figures
// (allgather, allreduce, alltoall, pipelined-vs-sequential) at a micro
// grid and checks they render and export. The N-sweep grid is capped at
// 32 here — the a5/a6 self-check tests below and the CI bench-smoke and
// bench-trajectory jobs cover the N=256 points.
func TestExtensionFigureRenders(t *testing.T) {
	want := map[string][]string{
		"14":  {"mcast-binary", "mpich"},
		"14n": {"mcast-binary (32 proc)", "mpich (32 proc)"},
		"14h": {"mcast-2level (32 proc)", "mcast-pipelined (32 proc)"},
		"15":  {"mcast-binary", "mpich"},
		"15n": {"mcast-binary (32 proc)", "mpich (32 proc)"},
		"15h": {"mcast-2level (32 proc)", "mcast-binary (32 proc)"},
		"16":  {"mcast-binary", "mcast-pipelined", "mcast-whole", "mpich"},
		"17":  {"mcast-binary", "mcast-pipelined"},
		"18":  {"mcast-whole", "sliced"},
		"19":  {"mcast-binary", "mcast-chunked", "mpich"},
	}
	for _, id := range []string{"14", "14n", "14h", "15", "15n", "15h", "16", "17", "18", "19"} {
		d, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("figure %s not registered", id)
		}
		r, err := d.Build(bench.Options{Reps: 1, SizeStep: 2500, MaxSize: 5000, Seed: 1, MaxN: 32})
		if err != nil {
			t.Fatal(err)
		}
		out := r.Render()
		for _, series := range want[id] {
			if !strings.Contains(out, series) {
				t.Fatalf("figure %s render missing series %q:\n%s", id, series, out)
			}
		}
		if lines := strings.Split(r.CSV(), "\n"); len(lines) < 5 {
			t.Fatalf("figure %s csv too short", id)
		}
	}
}

// TestFrameTableSelfChecks builds the A3 frame table (the artifact the
// CI bench-smoke job uploads) and asserts every measured count matches
// its formula — a frame-count regression anywhere in the suite turns a
// row's match column into MISMATCH and fails this test.
func TestFrameTableSelfChecks(t *testing.T) {
	d, ok := bench.Lookup("a3")
	if !ok {
		t.Fatal("experiment a3 not registered")
	}
	r, err := d.Build(bench.Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("frame table has mismatched rows:\n%s", out)
	}
}

// TestQueueTableSelfChecks builds the A5 shared-uplink queue-occupancy
// table (the second artifact the CI bench-smoke job uploads) and asserts
// the silent-drop check column is clean: a frame tail-dropped anywhere
// in the N-sweep — instead of being absorbed by flow-control
// backpressure — turns a row into SILENT-DROP and fails this test.
func TestQueueTableSelfChecks(t *testing.T) {
	d, ok := bench.Lookup("a5")
	if !ok {
		t.Fatal("experiment a5 not registered")
	}
	r, err := d.Build(bench.Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if strings.Contains(out, "SILENT-DROP") {
		t.Fatalf("queue table reports silent egress drops:\n%s", out)
	}
	if !strings.Contains(out, "gather") || !strings.Contains(out, "32") {
		t.Fatalf("queue table misses the N-sweep rows:\n%s", out)
	}
}

// TestScoutEconomyTableSelfChecks builds the A6 two-level scout-economy
// table (the third artifact the CI bench-smoke job uploads) and asserts
// both check markers are clean: a two-level allgather exceeding the
// N + S² + S scout bound renders SCOUT-EXCESS, and a tail-dropped frame
// renders SILENT-DROP — either fails this test and the CI gate.
func TestScoutEconomyTableSelfChecks(t *testing.T) {
	d, ok := bench.Lookup("a6")
	if !ok {
		t.Fatal("experiment a6 not registered")
	}
	r, err := d.Build(bench.Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if strings.Contains(out, "SCOUT-EXCESS") {
		t.Fatalf("scout economy table reports a breached bound:\n%s", out)
	}
	if strings.Contains(out, "SILENT-DROP") {
		t.Fatalf("scout economy table reports silent egress drops:\n%s", out)
	}
	if !strings.Contains(out, "32") {
		t.Fatalf("scout economy table misses the N=32 row:\n%s", out)
	}
}

// TestTwoLevelBeatsFlatPipelinedAtN32 is the fig 14h acceptance point,
// pinned as a test: the two-level allgather must beat the flat
// pipelined allgather on the shared-uplink switch at N=32 with 5000 B
// chunks.
func TestTwoLevelBeatsFlatPipelinedAtN32(t *testing.T) {
	prof := simnet.DefaultProfile()
	prof.UplinkFanout = 4
	measure := func(alg bench.Algorithm) float64 {
		sc := bench.DefaultScenario()
		sc.Procs = 32
		sc.Topology = simnet.SwitchShared
		sc.Algorithm = alg
		sc.Op = bench.OpAllgather
		sc.MsgSize = 5000
		sc.Reps = 2
		sc.Profile = &prof
		r, err := bench.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return r.Median()
	}
	two := measure(bench.McastTwoLevel)
	flat := measure(bench.McastPipelined)
	if two >= flat {
		t.Fatalf("two-level allgather (%.0f µs) did not beat flat pipelined (%.0f µs) at N=32/5000B", two, flat)
	}
	t.Logf("N=32 5000B allgather: two-level %.0f µs vs flat pipelined %.0f µs (%.2fx)", two, flat, flat/two)
}
