package repro

// Smoke tests for the figure harness: one tiny scenario per protocol and
// per collective, so a regression in the measurement pipeline fails
// `go test` instead of only surfacing under -bench.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/simnet"
)

// TestScenarioSmoke runs a minimal bench.Run for every protocol the
// harness knows, on both topologies' default ops.
func TestScenarioSmoke(t *testing.T) {
	algs := []bench.Algorithm{
		bench.MPICH, bench.McastBinary, bench.McastLinear,
		bench.McastAck, bench.McastNack, bench.Sequencer,
	}
	for _, alg := range algs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			sc := bench.DefaultScenario()
			sc.Algorithm = alg
			sc.MsgSize = 600
			sc.Reps = 2
			r, err := bench.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Samples) != 2 || r.Median() <= 0 {
				t.Fatalf("implausible result: %+v", r)
			}
		})
	}
}

// TestCollectiveScenarioSmoke covers every measurable collective op with
// the multicast suite and the baseline.
func TestCollectiveScenarioSmoke(t *testing.T) {
	ops := []bench.Op{
		bench.OpBcast, bench.OpBarrier, bench.OpAllgather,
		bench.OpAllreduce, bench.OpScatter, bench.OpGather,
	}
	for _, alg := range []bench.Algorithm{bench.MPICH, bench.McastBinary} {
		for _, op := range ops {
			alg, op := alg, op
			t.Run(fmt.Sprintf("%s/%s", alg, op), func(t *testing.T) {
				sc := bench.DefaultScenario()
				sc.Algorithm = alg
				sc.Op = op
				sc.Procs = 5
				sc.Topology = simnet.Hub
				sc.MsgSize = 512
				sc.Reps = 2
				r, err := bench.Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if r.Median() <= 0 {
					t.Fatalf("implausible latency %v", r.Median())
				}
			})
		}
	}
}

// TestExtensionFigureRenders builds the new Allgather/Allreduce
// comparison figures at a micro grid and checks they render and export.
func TestExtensionFigureRenders(t *testing.T) {
	for _, id := range []string{"14", "15"} {
		d, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("figure %s not registered", id)
		}
		r, err := d.Build(bench.Options{Reps: 1, SizeStep: 2500, MaxSize: 5000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := r.Render()
		if !strings.Contains(out, "mcast-binary") || !strings.Contains(out, "mpich") {
			t.Fatalf("figure %s render missing series:\n%s", id, out)
		}
		if lines := strings.Split(r.CSV(), "\n"); len(lines) < 5 {
			t.Fatalf("figure %s csv too short", id)
		}
	}
}
